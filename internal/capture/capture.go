// Package capture implements the paper's continuous approximate count
// scheme (§5.4): network-size estimation by Capture–Recapture under the
// Jolly–Seber model for open populations.
//
// The scheme views the dynamic network as an evolving ecology. At each
// interval t the querying host holds a set M_t of marked hosts (hosts
// known alive), draws a fresh uniform sample N_t through a protocol
// "black-box" sampling operation, counts the recaptures
// m_t = |M_t ∩ N_t|, and estimates
//
//	Ĥ_t = |M_t| · |N_t| / m_t.
//
// Marked-set maintenance follows §5.4 exactly: M'_t = M_{t−1} ∪ N_{t−1}
// is probed, dead hosts are dropped, and the survivors become M_t
// (optionally truncated). Estimation begins at the second interval
// because M_1 = ∅.
//
// The package is deliberately protocol-agnostic: callers supply a Sampler
// (the black-box of assumption 1 — e.g. random walks on an expander
// overlay) and an alive-probe. A Population helper simulating memoryless
// churn (assumptions 2–3) is provided for experiments and tests.
package capture

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"validity/internal/graph"
)

// Sampler returns s hosts drawn (approximately) uniformly at random from
// the current population. The black-box operation of §5.4: on expander-
// like P2P overlays it is realized with s random walks of length
// O(log |H|).
type Sampler interface {
	Sample(s int) []graph.HostID
}

// Prober reports whether a host is currently alive; the querying host uses
// it to refresh its marked set (a direct probe message in a real network).
type Prober interface {
	Alive(h graph.HostID) bool
}

// Estimator runs the Jolly–Seber capture–recapture loop.
type Estimator struct {
	sampler Sampler
	prober  Prober
	// sampleSize is |N_t| per interval.
	sampleSize int
	// maxMarked caps |M_t| (§5.4: "if the set M_t grows more than
	// required, h_q can arbitrarily remove hosts"); 0 means no cap.
	maxMarked int

	marked     map[graph.HostID]bool // M_t
	lastSample []graph.HostID        // N_{t-1}
	intervals  int
}

// NewEstimator returns an estimator drawing sampleSize hosts per interval.
func NewEstimator(sampler Sampler, prober Prober, sampleSize, maxMarked int) (*Estimator, error) {
	if sampler == nil || prober == nil {
		return nil, fmt.Errorf("capture: sampler and prober are required")
	}
	if sampleSize < 1 {
		return nil, fmt.Errorf("capture: sample size must be ≥ 1, got %d", sampleSize)
	}
	return &Estimator{
		sampler:    sampler,
		prober:     prober,
		sampleSize: sampleSize,
		maxMarked:  maxMarked,
		marked:     make(map[graph.HostID]bool),
	}, nil
}

// Result is one interval's outcome.
type Result struct {
	// Interval is the 1-based interval index.
	Interval int
	// Marked is |M_t| after probing.
	Marked int
	// Sampled is |N_t|.
	Sampled int
	// Recaptured is m_t = |M_t ∩ N_t|.
	Recaptured int
	// Estimate is Ĥ_t = |M_t|·|N_t|/m_t, or NaN when m_t = 0 (no overlap:
	// the population dwarfs the marked set, or everything churned away).
	Estimate float64
}

// Step executes one interval: refresh the marked set from the previous
// interval's knowledge, draw a fresh sample, and estimate. The first call
// only marks (M_1 = ∅ ⇒ no estimate), matching §5.4.
func (e *Estimator) Step() Result {
	e.intervals++
	// M'_t = M_{t-1} ∪ N_{t-1}; probe and keep the alive ones.
	for _, h := range e.lastSample {
		e.marked[h] = true
	}
	for h := range e.marked {
		if !e.prober.Alive(h) {
			delete(e.marked, h)
		}
	}
	// Optional truncation ("h_q can arbitrarily remove hosts", §5.4).
	// Remove the highest IDs for determinism across runs.
	if e.maxMarked > 0 && len(e.marked) > e.maxMarked {
		ids := make([]graph.HostID, 0, len(e.marked))
		for h := range e.marked {
			ids = append(ids, h)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, h := range ids[e.maxMarked:] {
			delete(e.marked, h)
		}
	}
	// Fresh sample N_t.
	sample := e.sampler.Sample(e.sampleSize)
	recaptured := 0
	for _, h := range sample {
		if e.marked[h] {
			recaptured++
		}
	}
	res := Result{
		Interval:   e.intervals,
		Marked:     len(e.marked),
		Sampled:    len(sample),
		Recaptured: recaptured,
		Estimate:   math.NaN(),
	}
	if recaptured > 0 && e.intervals > 1 {
		res.Estimate = float64(res.Marked) * float64(res.Sampled) / float64(recaptured)
	}
	e.lastSample = sample
	return res
}

// MarkedCount exposes |M_t| (tests).
func (e *Estimator) MarkedCount() int { return len(e.marked) }

// RequiredSampleSize returns the §5.4 bound |N_t| ≥ (4/(ε²·ρ))·ln(2/δ)
// where ρ is the marked fraction |M_t|/|H_t| (estimated from the previous
// interval if |H_t| is unknown).
func RequiredSampleSize(eps, delta, rho float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("capture: ε must be in (0,1), got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("capture: δ must be in (0,1), got %v", delta)
	}
	if rho <= 0 || rho > 1 {
		return 0, fmt.Errorf("capture: marked fraction ρ must be in (0,1], got %v", rho)
	}
	return int(math.Ceil(4 / (eps * eps * rho) * math.Log(2/delta))), nil
}

// Population simulates an open population with memoryless churn: at each
// Advance, every host independently leaves with probability leaveProb
// (assumption 3) and newHosts fresh hosts join, keeping the population
// roughly stationary when newHosts ≈ leaveProb·size. It implements both
// Sampler (uniform sampling, assumptions 1–2) and Prober.
type Population struct {
	rng    *rand.Rand
	alive  map[graph.HostID]bool
	nextID graph.HostID
}

// NewPopulation creates a population of n hosts.
func NewPopulation(n int, rng *rand.Rand) *Population {
	p := &Population{rng: rng, alive: make(map[graph.HostID]bool, n)}
	for i := 0; i < n; i++ {
		p.alive[p.nextID] = true
		p.nextID++
	}
	return p
}

// Size returns the current |H_t|.
func (p *Population) Size() int { return len(p.alive) }

// Advance applies one churn interval.
func (p *Population) Advance(leaveProb float64, joins int) {
	for h := range p.alive {
		if p.rng.Float64() < leaveProb {
			delete(p.alive, h)
		}
	}
	for i := 0; i < joins; i++ {
		p.alive[p.nextID] = true
		p.nextID++
	}
}

// Alive implements Prober.
func (p *Population) Alive(h graph.HostID) bool { return p.alive[h] }

// Sample implements Sampler: s uniform draws without replacement (or the
// whole population if s exceeds it).
func (p *Population) Sample(s int) []graph.HostID {
	ids := make([]graph.HostID, 0, len(p.alive))
	for h := range p.alive {
		ids = append(ids, h)
	}
	// Sort before shuffling: map iteration order varies between runs and
	// would break seeded reproducibility.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	p.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if s > len(ids) {
		s = len(ids)
	}
	return ids[:s]
}
