package capture

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimatorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := NewPopulation(100, rng)
	if _, err := NewEstimator(nil, pop, 10, 0); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if _, err := NewEstimator(pop, nil, 10, 0); err == nil {
		t.Fatal("nil prober accepted")
	}
	if _, err := NewEstimator(pop, pop, 0, 0); err == nil {
		t.Fatal("zero sample size accepted")
	}
}

func TestFirstIntervalNoEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop := NewPopulation(1000, rng)
	est, err := NewEstimator(pop, pop, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := est.Step()
	if !math.IsNaN(r.Estimate) {
		t.Fatalf("first interval produced estimate %v; M_1 = ∅", r.Estimate)
	}
	if r.Marked != 0 {
		t.Fatalf("first interval marked = %d, want 0", r.Marked)
	}
}

func TestStaticPopulationEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	pop := NewPopulation(n, rng)
	est, err := NewEstimator(pop, pop, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	est.Step() // mark only
	var sum float64
	var got int
	for i := 0; i < 10; i++ {
		r := est.Step()
		if !math.IsNaN(r.Estimate) {
			sum += r.Estimate
			got++
		}
	}
	if got == 0 {
		t.Fatal("no estimates produced")
	}
	mean := sum / float64(got)
	if mean < n*0.8 || mean > n*1.2 {
		t.Fatalf("mean estimate %.0f, want ≈ %d", mean, n)
	}
}

func TestChurningPopulationTracksSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 3000
	pop := NewPopulation(n, rng)
	est, err := NewEstimator(pop, pop, 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	est.Step()
	var relErrSum float64
	var got int
	for i := 0; i < 15; i++ {
		// 5% leave, matching joins: stationary churning population.
		pop.Advance(0.05, int(0.05*float64(pop.Size())))
		r := est.Step()
		if math.IsNaN(r.Estimate) {
			continue
		}
		relErrSum += math.Abs(r.Estimate/float64(pop.Size()) - 1)
		got++
	}
	if got < 10 {
		t.Fatalf("only %d estimates under churn", got)
	}
	if avg := relErrSum / float64(got); avg > 0.35 {
		t.Fatalf("mean relative error %.2f too high under churn", avg)
	}
}

func TestShrinkingPopulationFollowed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pop := NewPopulation(4000, rng)
	est, _ := NewEstimator(pop, pop, 500, 0)
	est.Step()
	pop.Advance(0.5, 0) // halve the population
	pop.Advance(0.0, 0)
	var last float64
	for i := 0; i < 5; i++ {
		r := est.Step()
		if !math.IsNaN(r.Estimate) {
			last = r.Estimate
		}
	}
	size := float64(pop.Size())
	if last < size*0.6 || last > size*1.6 {
		t.Fatalf("estimate %.0f did not follow population down to %.0f", last, size)
	}
}

func TestMaxMarkedCap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pop := NewPopulation(1000, rng)
	est, _ := NewEstimator(pop, pop, 200, 50)
	for i := 0; i < 5; i++ {
		est.Step()
	}
	if est.MarkedCount() > 50 {
		t.Fatalf("marked set %d exceeds cap 50", est.MarkedCount())
	}
}

func TestRequiredSampleSize(t *testing.T) {
	s, err := RequiredSampleSize(0.1, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// 4/(0.01·0.1)·ln(40) ≈ 4000·3.689 ≈ 14756.
	if s < 14000 || s > 15500 {
		t.Fatalf("sample size = %d, want ≈ 14756", s)
	}
	for _, bad := range [][3]float64{
		{0, 0.05, 0.1}, {1, 0.05, 0.1}, {0.1, 0, 0.1}, {0.1, 1, 0.1},
		{0.1, 0.05, 0}, {0.1, 0.05, 1.5},
	} {
		if _, err := RequiredSampleSize(bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("RequiredSampleSize(%v) accepted invalid input", bad)
		}
	}
}

func TestPopulationAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pop := NewPopulation(1000, rng)
	pop.Advance(0, 100)
	if pop.Size() != 1100 {
		t.Fatalf("size after joins = %d, want 1100", pop.Size())
	}
	pop.Advance(1.0, 0)
	if pop.Size() != 0 {
		t.Fatalf("size after full churn = %d, want 0", pop.Size())
	}
	// Sample on an empty population returns nothing.
	if got := pop.Sample(10); len(got) != 0 {
		t.Fatalf("empty population sampled %d hosts", len(got))
	}
}

func TestSampleUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pop := NewPopulation(100, rng)
	counts := make(map[int]int)
	const trials = 2000
	for i := 0; i < trials; i++ {
		for _, h := range pop.Sample(10) {
			counts[int(h)]++
		}
	}
	// Each host expected 200 draws; demand all within a wide band.
	for h := 0; h < 100; h++ {
		if counts[h] < 100 || counts[h] > 320 {
			t.Fatalf("host %d drawn %d times, want ≈ 200", h, counts[h])
		}
	}
}

func TestRecaptureZeroYieldsNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pop := NewPopulation(100000, rng) // sample of 5 almost never recaptures
	est, _ := NewEstimator(pop, pop, 5, 0)
	est.Step()
	r := est.Step()
	if r.Recaptured == 0 && !math.IsNaN(r.Estimate) {
		t.Fatal("zero recaptures must produce NaN estimate")
	}
}
