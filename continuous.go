package validity

import (
	"fmt"
	"math/rand"
	"time"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/continuous"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/stream"
)

// ContinuousConfig configures a long-running windowed query (§4.2).
type ContinuousConfig struct {
	// Aggregate is the query.
	Aggregate Aggregate
	// Hq is the monitoring host (default 0).
	Hq int
	// DHat overestimates the stable diameter; 0 means diameter + 2.
	DHat int
	// WindowLen is W in ticks; 0 means exactly 2·D̂ (the minimum §4.2
	// allows).
	WindowLen int64
	// Windows is the number of windows to run (required).
	Windows int
	// Failures schedules that many random departures at a uniform rate
	// across the whole run.
	Failures int
	// Schedule supplies explicit failures (absolute time) and overrides
	// Failures.
	Schedule []Failure
	// SketchVectors is the FM repetition count (default 8).
	SketchVectors int
	// Seed drives randomness; 0 derives from the network seed.
	Seed int64
	// Engine runs the stream natively on the live query engine
	// (internal/stream over node.Runtime with the in-process channel
	// transport, one goroutine per host, wall-clock δ) instead of the
	// deterministic event simulator: each window is a real engine
	// sub-query derived from the seed and the window index, the failure
	// schedule is enforced per window on the engine's membership layer,
	// and results are read at quiescence. The same windows, bounds, and
	// validity semantics — executed the way a deployment would run them.
	Engine bool
	// Hop is the wall-clock per-hop delay bound δ for Engine mode
	// (default 5ms); ignored by the simulator path.
	Hop time.Duration
}

// WindowResult is one window of a continuous query; see
// ContinuousConfig.
type WindowResult struct {
	// Index is the 0-based window number; Start/End its absolute
	// interval.
	Index      int
	Start, End int64
	// Value is the window's declared result.
	Value float64
	// Lower, Upper are the window's own validity bounds.
	Lower, Upper float64
	// HC, HU are the bound set sizes; AliveAtStart is the population.
	HC, HU, AliveAtStart int
	// Valid reports Continuous Single-Site Validity for this window.
	Valid bool
	// Messages is the window's communication cost.
	Messages int64
}

// ContinuousQuery runs a windowed continuous aggregate query over the
// network under churn, returning one result per window, each with its own
// Single-Site Validity bounds (§4.2).
func (n *Network) ContinuousQuery(cfg ContinuousConfig) ([]WindowResult, error) {
	kind, err := cfg.Aggregate.kind()
	if err != nil {
		return nil, err
	}
	if cfg.Hq < 0 || cfg.Hq >= n.g.Len() {
		return nil, fmt.Errorf("validity: monitoring host %d outside network", cfg.Hq)
	}
	dHat := cfg.DHat
	if dHat == 0 {
		dHat = n.diameter + 2
	}
	vectors := cfg.SketchVectors
	if vectors == 0 {
		vectors = agg.DefaultParams().Vectors
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = n.seed + 1
	}
	winLen := sim.Time(cfg.WindowLen)
	if winLen == 0 {
		winLen = sim.Time(2 * dHat)
	}

	var sched churn.Timeline
	switch {
	case cfg.Schedule != nil:
		for _, f := range cfg.Schedule {
			if f.H < 0 || f.H >= n.g.Len() {
				return nil, fmt.Errorf("validity: failure host %d outside network", f.H)
			}
			sched = append(sched, eventOf(f))
		}
	case cfg.Failures > 0:
		if cfg.Failures >= n.g.Len() {
			return nil, fmt.Errorf("validity: cannot fail %d of %d hosts", cfg.Failures, n.g.Len())
		}
		if cfg.Engine {
			break // the engine plan derives its own schedule from the seed
		}
		horizon := winLen * sim.Time(cfg.Windows)
		sched = churn.UniformRemoval(n.g.Len(), cfg.Failures, graph.HostID(cfg.Hq), 0, horizon,
			rand.New(rand.NewSource(seed)))
	}

	if cfg.Engine {
		return n.continuousOnEngine(cfg, kind, dHat, vectors, winLen, seed, sched)
	}

	medium := sim.MediumPointToPoint
	if n.wireless {
		medium = sim.MediumWireless
	}
	rs, err := continuous.Run(continuous.Config{
		Graph:     n.g,
		Values:    n.values,
		Hq:        graph.HostID(cfg.Hq),
		Kind:      kind,
		DHat:      dHat,
		Params:    agg.Params{Vectors: vectors, Bits: agg.DefaultParams().Bits},
		WindowLen: winLen,
		Windows:   cfg.Windows,
		Schedule:  sched,
		Medium:    medium,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	out := make([]WindowResult, len(rs))
	for i, r := range rs {
		out[i] = WindowResult{
			Index: r.Index, Start: int64(r.Start), End: int64(r.End),
			Value: r.Value, Lower: r.Lower, Upper: r.Upper,
			HC: r.HC, HU: r.HU, AliveAtStart: r.AliveAtStart,
			Valid: r.Valid, Messages: r.Messages,
		}
	}
	return out, nil
}

// continuousOnEngine is ContinuousQuery's Engine path: the windowed query
// runs as a stream.Plan on a LiveNetwork — every window an engine
// sub-query over real goroutines and wall-clock δ, results read at
// quiescence, each judged by the same per-window oracle bounds the
// simulator path uses.
func (n *Network) continuousOnEngine(cfg ContinuousConfig, kind agg.Kind, dHat, vectors int,
	winLen sim.Time, seed int64, sched churn.Schedule) ([]WindowResult, error) {

	if n.wireless {
		// The live engine accounts point-to-point sends only; §5.3
		// wireless broadcast accounting exists in the simulator path.
		return nil, fmt.Errorf("validity: Engine continuous queries run point-to-point; use the simulator path for wireless accounting")
	}
	hop := cfg.Hop
	if hop <= 0 {
		hop = 5 * time.Millisecond
	}
	plan := &stream.Plan{
		Query: 1,
		Spec: protocol.Query{
			Kind:   kind,
			Hq:     graph.HostID(cfg.Hq),
			DHat:   dHat,
			Params: agg.Params{Vectors: vectors, Bits: agg.DefaultParams().Bits},
		},
		WindowLen: winLen,
		Windows:   cfg.Windows,
		Seed:      seed,
		Static:    sched,
	}
	if cfg.Schedule == nil && cfg.Failures > 0 {
		plan.Source = churn.Uniform{N: n.g.Len(), Remove: cfg.Failures}
	}
	ln := node.NewLiveNetwork(n.g, n.values, hop)
	defer ln.Stop()
	s, err := stream.Live(ln, plan)
	if err != nil {
		return nil, err
	}
	out := make([]WindowResult, 0, cfg.Windows)
	for r := range s.Results() {
		if r.Err != nil {
			return nil, r.Err
		}
		out = append(out, WindowResult{
			Index: r.Window, Start: r.Start, End: r.End,
			Value: r.Value, Lower: r.Lower, Upper: r.Upper,
			HC: r.HC, HU: r.HU, AliveAtStart: r.HU,
			Valid: r.Valid, Messages: r.Stats.MessagesSent,
		})
	}
	if len(out) != cfg.Windows {
		return nil, fmt.Errorf("validity: engine stream delivered %d of %d windows", len(out), cfg.Windows)
	}
	return out, nil
}

// ProbeDiameter runs the §6.6.2 WILDFIRE self-probe: a max query over
// broadcast distances that discovers the eccentricity of hq, returning a
// recommended D̂ for subsequent queries.
func (n *Network) ProbeDiameter(hq int, seed int64) (eccentricity int, recommendedDHat int, err error) {
	if hq < 0 || hq >= n.g.Len() {
		return 0, 0, fmt.Errorf("validity: probing host %d outside network", hq)
	}
	if seed == 0 {
		seed = n.seed + 1
	}
	probe := protocol.NewDiameterProbe(graph.HostID(hq))
	nw := sim.NewNetwork(sim.Config{Graph: n.g, Seed: seed, Values: n.values})
	v, _, err := protocol.Run(probe, nw)
	if err != nil {
		return 0, 0, err
	}
	rec, _ := probe.RecommendedDHat()
	return int(v), rec, nil
}
